//! The serving engine: scoped worker shards over the micro-batching
//! queue, answering through the model's bit-sliced associative memory,
//! with generation-tagged hot model swap and a background online
//! trainer that folds client feedback into refreshed generations.

use crate::error::ServeError;
use crate::obs::ServeObs;
use crate::queue::{LearnQueue, Rejected, RequestQueue};
use crate::request::{LearnSample, Request, Response, Slot, Ticket};
use crate::stats::StatsSnapshot;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use uhd_core::{Encoder, HdcError, HdcModel, InferenceMode, OnlineLearner};
use uhd_obs::{Recorder, TraceEvent, TraceKind, TraceLevel};

/// Sizing of the worker pool and its micro-batches, the inference mode
/// requests are answered in, and the online-learning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker shards (threads) draining the request queue.
    pub shards: usize,
    /// Maximum requests one shard claims per queue pop.
    pub max_batch: usize,
    /// Inference mode workers answer in.
    /// [`InferenceMode::BinarizedQuery`] (the default) is the
    /// hardware-faithful fast path through the bit-sliced associative
    /// memory; the integer modes trade throughput for the accuracy of
    /// non-quantized similarity (see `DESIGN.md` §4 on why dark, sparse
    /// datasets need them).
    pub mode: InferenceMode,
    /// Publish a rebinarized model snapshot after this many applied
    /// learning updates. The trainer additionally publishes whenever
    /// its queue runs dry with unpublished updates, so a paused label
    /// stream never strands learned state.
    pub snapshot_every: usize,
    /// Cap on runtime class admission: labels at or beyond this index
    /// are rejected eagerly by [`ServeEngine::learn`] /
    /// [`ServeEngine::feedback`], bounding learner memory against a
    /// corrupt label stream.
    pub max_classes: usize,
    /// Capacity of the labelled-sample queue. When the background
    /// trainer falls this far behind, [`ServeEngine::learn`] /
    /// [`ServeEngine::feedback`] *block* until it catches up —
    /// backpressure instead of unbounded memory growth.
    pub learn_queue_cap: usize,
    /// Load-shedding admission threshold: a submit arriving while the
    /// request queue already holds this many pending requests is
    /// rejected with [`ServeError::Overloaded`] instead of queueing
    /// unboundedly. The default `usize::MAX` disables shedding (must
    /// be nonzero — a zero threshold would reject everything).
    pub shed_above: usize,
    /// Whether the engine records latency histograms, queue gauges,
    /// and trace events (on by default). With telemetry off the engine
    /// keeps its counters (they are plain relaxed atomics either way)
    /// but renders no metrics and reports zero latency quantiles —
    /// the configuration the throughput bench measures instrumentation
    /// overhead against.
    pub telemetry: bool,
    /// Trace-event verbosity. `None` (the default) follows the
    /// `UHD_LOG` environment knob at [`ServeEngine::serve`] time.
    pub trace_level: Option<TraceLevel>,
}

impl ServeConfig {
    /// A binarized-query (associative-memory) configuration with
    /// explicit shard and batch sizing. Online learning defaults:
    /// snapshot every 64 updates, class admission capped at 4096, a
    /// 4096-sample learn queue.
    #[must_use]
    pub fn new(shards: usize, max_batch: usize) -> Self {
        ServeConfig {
            shards,
            max_batch,
            mode: InferenceMode::BinarizedQuery,
            snapshot_every: 64,
            max_classes: uhd_core::online::DEFAULT_MAX_CLASSES,
            learn_queue_cap: 4096,
            shed_above: usize::MAX,
            telemetry: true,
            trace_level: None,
        }
    }

    /// The same sizing under an explicit [`InferenceMode`].
    #[must_use]
    pub fn with_mode(mut self, mode: InferenceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Publish a learner snapshot after `snapshot_every` applied
    /// updates (must be nonzero).
    #[must_use]
    pub fn with_snapshot_every(mut self, snapshot_every: usize) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// Cap runtime class admission at `max_classes` (must be nonzero
    /// and at least the initial model's class count).
    #[must_use]
    pub fn with_max_classes(mut self, max_classes: usize) -> Self {
        self.max_classes = max_classes;
        self
    }

    /// Bound the labelled-sample queue at `learn_queue_cap` samples
    /// (must be nonzero); producers block when it is full.
    #[must_use]
    pub fn with_learn_queue_cap(mut self, learn_queue_cap: usize) -> Self {
        self.learn_queue_cap = learn_queue_cap;
        self
    }

    /// Shed classify submits once the request queue holds `shed_above`
    /// pending requests (must be nonzero; `usize::MAX` disables).
    #[must_use]
    pub fn with_shed_above(mut self, shed_above: usize) -> Self {
        self.shed_above = shed_above;
        self
    }

    /// Enable or disable latency histograms, queue gauges, and trace
    /// events (see [`ServeConfig::telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pin the trace-event verbosity instead of reading `UHD_LOG`.
    #[must_use]
    pub fn with_trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = Some(level);
        self
    }

    /// One shard per available hardware thread, batches of 32.
    #[must_use]
    pub fn auto() -> Self {
        let shards = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ServeConfig::new(shards, 32)
    }

    pub(crate) fn validate(self) -> Result<(), ServeError> {
        if self.shards == 0 || self.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "shards ({}) and max_batch ({}) must be nonzero",
                    self.shards, self.max_batch
                ),
            });
        }
        if self.snapshot_every == 0 || self.max_classes == 0 || self.learn_queue_cap == 0 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "snapshot_every ({}), max_classes ({}) and learn_queue_cap ({}) \
                     must be nonzero",
                    self.snapshot_every, self.max_classes, self.learn_queue_cap
                ),
            });
        }
        if self.shed_above == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "shed_above must be nonzero (0 would shed every request)".to_string(),
            });
        }
        Ok(())
    }
}

/// One generation of the served model. Workers snapshot the whole entry
/// per micro-batch, so every response is attributable to exactly one
/// generation even while [`ServeEngine::update_model`] swaps underneath.
#[derive(Debug)]
struct ModelGeneration {
    generation: u64,
    model: HdcModel,
}

/// State shared between the client handle, the worker shards, and the
/// background trainer.
#[derive(Debug)]
struct Shared<'e, E: ?Sized> {
    encoder: &'e E,
    queue: RequestQueue,
    learn: LearnQueue,
    model: RwLock<Arc<ModelGeneration>>,
    /// The online learner's accumulators. Owned by the background
    /// trainer batch-by-batch, but [`ServeEngine::update_model`] also
    /// locks it to re-seed from a manually swapped model — lock order
    /// is always learner → model, never the reverse.
    learner: Mutex<OnlineLearner>,
    obs: ServeObs,
}

impl<E: ?Sized> Shared<'_, E> {
    /// Swap in a new model generation (shape already validated by the
    /// caller) and return its generation number.
    ///
    /// Lock poisoning is *recovered*, here and at every other
    /// model/learner lock in the engine: the guarded value is only
    /// ever replaced wholesale (`*slot = Arc::new(..)` /
    /// `*learner = OnlineLearner::..`), never mutated in place, so a
    /// writer that panicked between acquire and release left either
    /// the old value or the new one — both coherent. Propagating the
    /// poison instead would brick every subsequent classify on an
    /// otherwise healthy pool.
    fn publish_model(&self, model: HdcModel) -> u64 {
        let mut slot = self
            .model
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let generation = slot.generation + 1;
        *slot = Arc::new(ModelGeneration { generation, model });
        generation
    }
}

/// Handle to a running engine, passed to the closure of
/// [`ServeEngine::serve`]. All methods take `&self`, so the handle can
/// be shared freely across client threads.
#[derive(Debug)]
pub struct ServeEngine<'s, E: ?Sized> {
    shared: &'s Shared<'s, E>,
    config: ServeConfig,
}

// Manual impls: deriving would put bounds on E that the shared
// reference does not need.
impl<E: ?Sized> Clone for ServeEngine<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E: ?Sized> Copy for ServeEngine<'_, E> {}

impl<E: Encoder + ?Sized> ServeEngine<'_, E> {
    /// Run a serving session: spawn `config.shards` workers over a
    /// shared micro-batching queue, hand the client closure an engine
    /// handle, and shut the pool down (draining every pending request)
    /// when the closure returns.
    ///
    /// Workers answer requests by encoding with `encoder` and searching
    /// the model's bit-sliced [`uhd_core::AssociativeMemory`] — the
    /// binarized-query datapath, bit-identical to
    /// [`HdcModel::classify_encoded`].
    ///
    /// The scoped-thread design means `encoder` is borrowed, not
    /// `'static`: any [`Encoder`] usable on the stack is servable —
    /// image, text or tabular alike; the engine has no
    /// workload-specific paths.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidConfig`] for a zero shard or batch count.
    /// * [`ServeError::ModelShapeMismatch`] when `model.dim()` differs
    ///   from `encoder.dim()`.
    pub fn serve<R>(
        config: ServeConfig,
        encoder: &E,
        model: HdcModel,
        client: impl FnOnce(&ServeEngine<'_, E>) -> R,
    ) -> Result<R, ServeError> {
        config.validate()?;
        if model.dim() != encoder.dim() {
            return Err(ServeError::ModelShapeMismatch {
                expected_dim: encoder.dim(),
                got_dim: model.dim(),
            });
        }
        if model.classes() > config.max_classes {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "initial model has {} classes but max_classes is {}",
                    model.classes(),
                    config.max_classes
                ),
            });
        }
        let learner = OnlineLearner::from_model(&model).with_max_classes(config.max_classes);
        let recorder = if config.telemetry {
            Recorder::new(config.trace_level.unwrap_or_else(TraceLevel::from_env))
        } else {
            Recorder::noop()
        };
        let obs = ServeObs::new(recorder, config.shards);
        let shared = Shared {
            encoder,
            queue: RequestQueue::unbounded()
                .with_gauges(obs.queue_depth.clone(), obs.queue_depth_hw.clone()),
            learn: LearnQueue::bounded(config.learn_queue_cap)
                .with_gauges(obs.learn_depth.clone(), obs.learn_depth_hw.clone()),
            model: RwLock::new(Arc::new(ModelGeneration {
                generation: 0,
                model,
            })),
            learner: Mutex::new(learner),
            obs,
        };
        shared.obs.event(
            TraceKind::KernelDispatched,
            kernel_ordinal(uhd_core::Kernel::active().name()),
            config.shards as u64,
        );
        Ok(std::thread::scope(|scope| {
            for shard in 0..config.shards {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, shard, config.max_batch, config.mode));
            }
            {
                let shared = &shared;
                scope.spawn(move || trainer_loop(shared, config));
            }
            // Closes both queues when the closure returns *or unwinds*,
            // so the scope's implicit join can never deadlock on
            // workers (or the trainer) still waiting for work.
            let _close_on_exit = CloseGuard(&shared.queue, &shared.learn);
            let engine = ServeEngine {
                shared: &shared,
                config,
            };
            client(&engine)
        }))
    }

    /// Enqueue one sample for classification; redeem the ticket with
    /// [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] for a sample failing the encoder's
    ///   [`Encoder::check_features`] (rejected eagerly, before it
    ///   reaches the queue).
    /// * [`ServeError::Overloaded`] when the queue already holds
    ///   [`ServeConfig::shed_above`] pending requests (load shedding;
    ///   the depth check and the insert are one lock acquisition, so
    ///   admission is exact).
    /// * [`ServeError::Closed`] after shutdown.
    pub fn submit(&self, input: Vec<u8>) -> Result<Ticket, ServeError> {
        self.shared
            .encoder
            .check_features(&input)
            .map_err(ServeError::Core)?;
        let slot = Arc::new(Slot::default());
        let request = Request {
            input,
            slot: Arc::clone(&slot),
            submitted_at: Instant::now(),
        };
        match self
            .shared
            .queue
            .push_admitted(request, self.config.shed_above)
        {
            Ok(()) => {
                self.shared.obs.stats.record_submit();
                Ok(Ticket { slot })
            }
            Err(Rejected::Closed) => Err(ServeError::Closed),
            Err(Rejected::Shed { depth }) => {
                self.shared.obs.stats.record_shed();
                Err(ServeError::Overloaded {
                    depth,
                    shed_above: self.config.shed_above,
                })
            }
        }
    }

    /// Submit one sample and block for its answer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit`] plus any per-request
    /// classification error.
    pub fn classify(&self, input: &[u8]) -> Result<Response, ServeError> {
        self.submit(input.to_vec())?.wait()
    }

    /// Enqueue a whole slice of samples as one wave — a single queue
    /// lock acquisition and one worker broadcast — returning a ticket
    /// per sample in input order. The whole wave is validated before
    /// anything is enqueued (all-or-nothing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::submit`]. Admission is
    /// all-or-nothing like validation: a wave that would carry the
    /// queue past [`ServeConfig::shed_above`] is shed whole (the check
    /// is advisory — it races against concurrent submitters by at most
    /// a wave, which load shedding tolerates by design).
    pub fn submit_many(&self, inputs: &[Vec<u8>]) -> Result<Vec<Ticket>, ServeError> {
        if self.config.shed_above != usize::MAX {
            let depth = self.shared.queue.depth();
            if depth >= self.config.shed_above || depth + inputs.len() > self.config.shed_above {
                self.shared.obs.stats.record_shed();
                return Err(ServeError::Overloaded {
                    depth,
                    shed_above: self.config.shed_above,
                });
            }
        }
        let mut tickets = Vec::with_capacity(inputs.len());
        let mut requests = Vec::with_capacity(inputs.len());
        for input in inputs {
            self.shared
                .encoder
                .check_features(input)
                .map_err(ServeError::Core)?;
            let slot = Arc::new(Slot::default());
            tickets.push(Ticket {
                slot: Arc::clone(&slot),
            });
            requests.push(Request {
                input: input.clone(),
                slot,
                submitted_at: Instant::now(),
            });
        }
        match self.shared.queue.push_all(requests) {
            Ok(()) => {
                self.shared.obs.stats.record_submit_many(inputs.len());
                Ok(tickets)
            }
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Submit a whole slice of samples before waiting on any of them,
    /// so the worker shards can drain them as micro-batches. Responses
    /// are returned in input order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::classify`].
    pub fn classify_many(&self, inputs: &[Vec<u8>]) -> Result<Vec<Response>, ServeError> {
        self.submit_many(inputs)?
            .into_iter()
            .map(Ticket::wait)
            .collect()
    }

    /// Hot-swap the served model while requests are in flight ("dynamic
    /// HDC": a retraining loop can feed refreshed models into a live
    /// engine). Returns the new generation number; in-flight
    /// micro-batches finish on the generation they snapshotted.
    ///
    /// The background online learner is **re-seeded** from the new
    /// model's class accumulators: subsequent [`ServeEngine::learn`] /
    /// [`ServeEngine::feedback`] samples continue from the swapped-in
    /// model, and any online state not yet published is superseded by
    /// the manual swap (it was trained against the old model).
    ///
    /// # Errors
    ///
    /// * [`ServeError::ModelShapeMismatch`] when the new model's
    ///   dimension disagrees with the engine's encoder.
    /// * [`ServeError::InvalidConfig`] when the new model has more
    ///   classes than [`ServeConfig::max_classes`].
    pub fn update_model(&self, model: HdcModel) -> Result<u64, ServeError> {
        if model.dim() != self.shared.encoder.dim() {
            return Err(ServeError::ModelShapeMismatch {
                expected_dim: self.shared.encoder.dim(),
                got_dim: model.dim(),
            });
        }
        if model.classes() > self.config.max_classes {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "swapped-in model has {} classes but max_classes is {}",
                    model.classes(),
                    self.config.max_classes
                ),
            });
        }
        // Holding the learner lock across the publish serializes the
        // swap against the trainer's apply+publish cycle (which takes
        // the same locks in the same learner → model order).
        let classes = model.classes() as u64;
        // Poison recovery is sound: see `Shared::publish_model`. The
        // learner is about to be replaced wholesale anyway.
        let mut learner = self
            .shared
            .learner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *learner = OnlineLearner::from_model(&model).with_max_classes(self.config.max_classes);
        let generation = self.shared.publish_model(model);
        drop(learner);
        self.shared.obs.stats.record_swap();
        self.shared
            .obs
            .event(TraceKind::ModelSwapped, generation, classes);
        Ok(generation)
    }

    /// Enqueue one labelled sample for the background online learner
    /// to *bundle* into its class accumulator (single-pass training,
    /// continued at runtime). A label the learner has never seen
    /// admits a new class. The trainer folds it in asynchronously and
    /// periodically hot-publishes a rebinarized model — accuracy
    /// climbs while traffic is being served.
    ///
    /// Blocks when the learn queue holds
    /// [`ServeConfig::learn_queue_cap`] samples (backpressure while
    /// the trainer catches up).
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] for a sample failing the encoder's
    ///   [`Encoder::check_features`].
    /// * [`ServeError::InvalidLabel`] for a label at or beyond
    ///   [`ServeConfig::max_classes`].
    /// * [`ServeError::Closed`] after shutdown.
    pub fn learn(&self, input: Vec<u8>, label: usize) -> Result<(), ServeError> {
        self.submit_sample(input, label, None)
    }

    /// Enqueue served-prediction feedback: the client observed the
    /// engine answer `predicted` for `input` whose true class is
    /// `label`. The background learner applies the AdaptHD perceptron
    /// correction (only when `predicted != label`), and mispredictions
    /// steadily reshape the published model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServeEngine::learn`] (the `predicted`
    /// index is validated against the cap too).
    pub fn feedback(
        &self,
        input: Vec<u8>,
        predicted: usize,
        label: usize,
    ) -> Result<(), ServeError> {
        self.submit_sample(input, label, Some(predicted))
    }

    fn submit_sample(
        &self,
        input: Vec<u8>,
        label: usize,
        predicted: Option<usize>,
    ) -> Result<(), ServeError> {
        self.shared
            .encoder
            .check_features(&input)
            .map_err(ServeError::Core)?;
        let limit = self.config.max_classes;
        for index in std::iter::once(label).chain(predicted) {
            if index >= limit {
                return Err(ServeError::InvalidLabel {
                    label: index,
                    limit,
                });
            }
        }
        let sample = LearnSample {
            input,
            label,
            predicted,
            submitted_at: Instant::now(),
        };
        match self.shared.learn.push(sample) {
            Ok(()) => {
                self.shared.obs.stats.record_learn_submit();
                Ok(())
            }
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Block until every labelled sample submitted before this call
    /// has been applied by the background trainer — including the
    /// publication of any model snapshot its updates produced (the
    /// trainer publishes *before* marking samples applied, and always
    /// publishes when its queue runs dry with unpublished updates).
    /// Returns immediately if the trainer has died.
    pub fn sync_learner(&self) {
        self.shared.learn.sync();
    }

    /// Labelled samples currently queued for the background trainer.
    #[must_use]
    pub fn learn_queue_depth(&self) -> usize {
        self.shared.learn.depth()
    }

    /// Generation of the currently served model (0 for the initial one).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.shared
            .model
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .generation
    }

    /// Point-in-time engine counters plus histogram-derived latency
    /// quantiles (`p50_us`/`p99_us` for the classify path,
    /// `learn_p50_us`/`learn_p99_us` for the learn path, and the
    /// request-queue high-water mark).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.obs.snapshot()
    }

    /// Render every engine metric in the Prometheus text exposition
    /// format: the counter set, queue depth/high-water gauges, staged
    /// per-shard latency summaries (queue-wait, batch-compute) plus
    /// the engine-wide total, the learn drain lag, the dispatched
    /// kernel (`uhd_kernel_info`), and the kernel op counters
    /// (`uhd_kernel_ops_total{op=…}`, process-global). Returns the
    /// empty string when telemetry is disabled.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        crate::obs::render_prometheus(&self.shared.obs.recorder)
    }

    /// Render the engine metrics as JSON (see
    /// [`uhd_obs::Recorder::render_json`] for the schema). `{}` when
    /// telemetry is disabled.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.shared.obs.recorder.render_json()
    }

    /// The trace events currently resident in the engine's ring
    /// buffer, oldest first. Empty unless tracing is enabled (via
    /// `UHD_LOG` or [`ServeConfig::with_trace_level`]).
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.shared.obs.recorder.events()
    }

    /// Requests currently queued (not yet claimed by a shard).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The configuration this engine was started with.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.config
    }
}

/// Closes both queues on drop — the shutdown signal for every shard
/// and the background trainer.
struct CloseGuard<'q>(&'q RequestQueue, &'q LearnQueue);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
        self.1.close();
    }
}

/// Errors out every request still claimed by a batch when dropped —
/// on the normal path the batch is empty by then, so this only fires
/// when answering panicked mid-batch.
struct BatchGuard<'a>(&'a mut Vec<Request>);

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        for request in self.0.drain(..) {
            request.slot.complete(Err(ServeError::WorkerPanicked));
        }
    }
}

/// Fails the engine safely when a shard panics: closes the queue (new
/// submits see [`ServeError::Closed`]) and errors out every request
/// still queued, so no client can deadlock in [`Ticket::wait`] while
/// the panic propagates through the serve scope's join.
struct ShardFailGuard<'q>(&'q RequestQueue);

impl Drop for ShardFailGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        self.0.close();
        let mut orphaned = Vec::new();
        while self.0.pop_batch(usize::MAX, &mut orphaned) {
            for request in orphaned.drain(..) {
                request.slot.complete(Err(ServeError::WorkerPanicked));
            }
        }
    }
}

/// Releases [`ServeEngine::sync_learner`] waiters if the trainer
/// panics: no client may deadlock waiting on a learner that no longer
/// exists. A no-op on normal exit.
struct TrainerFailGuard<'q>(&'q LearnQueue);

impl Drop for TrainerFailGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.fail();
        }
    }
}

/// The background trainer: drain labelled samples, fold them into an
/// [`OnlineLearner`] seeded from the initially served model, and
/// periodically hot-publish a rebinarized snapshot.
///
/// Publish policy: a snapshot goes out after `snapshot_every` applied
/// updates, and whenever the learn queue runs dry with unpublished
/// updates. Publishing happens *before* the drained samples are marked
/// applied, so a [`ServeEngine::sync_learner`] that returns has also
/// observed its snapshot land.
///
/// Manual [`ServeEngine::update_model`] swaps share the generation
/// stream but do **not** re-seed the learner: online state accumulates
/// from the model the engine started with.
fn trainer_loop<E: Encoder + ?Sized>(shared: &Shared<'_, E>, config: ServeConfig) {
    let _fail_guard = TrainerFailGuard(&shared.learn);
    /// A sample encoded (outside the learner lock) and ready to apply.
    struct Prepared {
        sums: Result<Vec<i64>, HdcError>,
        label: usize,
        predicted: Option<usize>,
        submitted_at: Instant,
    }
    let mut scratch = uhd_core::BitSliceAccumulator::new(shared.encoder.dim());
    let mut batch: Vec<LearnSample> = Vec::with_capacity(config.max_batch);
    let mut prepared: Vec<Prepared> = Vec::with_capacity(config.max_batch);
    let mut unpublished = 0usize;
    while shared.learn.pop_batch(config.max_batch, &mut batch) {
        let n = batch.len() as u64;
        // Encoding needs no learner state: do it outside the learner
        // lock so a concurrent `update_model` re-seed never waits on
        // a whole batch of encodes. The trainer works in the *integer*
        // encoding domain (per-sample bipolar accumulator sums):
        // bundling is linear there, so streaming observations
        // reproduce single-pass batch training exactly — the
        // convergent path — where bundling binarized ±1 encodings
        // would collapse on the dark, sparse datasets of DESIGN.md §4.
        for sample in batch.drain(..) {
            prepared.push(Prepared {
                sums: encode_sums(shared.encoder, &mut scratch, &sample.input),
                label: sample.label,
                predicted: sample.predicted,
                submitted_at: sample.submitted_at,
            });
        }
        {
            // Poison recovery is sound: see `Shared::publish_model`.
            let mut learner = shared
                .learner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for Prepared {
                sums,
                label,
                predicted,
                submitted_at,
            } in prepared.drain(..)
            {
                let changed = sums.and_then(|s| match predicted {
                    None => learner.observe_sums(&s, label).map(|()| true),
                    Some(p) => learner.feedback_sums(&s, p, label),
                });
                // Submit → applied: how far the trainer runs behind
                // its producers.
                shared.obs.record_learn_lag(submitted_at.elapsed());
                match changed {
                    Ok(true) => {
                        unpublished += 1;
                        shared.obs.stats.record_learn_update();
                    }
                    Ok(false) => {}
                    // Eager submit-side validation makes rejections
                    // rare (a feedback prediction can still race past
                    // the learner's admitted classes); count and trace
                    // the offending label, don't die.
                    Err(_) => {
                        shared.obs.stats.record_learn_rejected();
                        shared.obs.event(
                            TraceKind::SampleRejected,
                            label as u64,
                            predicted.map_or(u64::MAX, |p| p as u64),
                        );
                    }
                }
            }
            // Publish after `snapshot_every` updates, and whenever the
            // queue runs dry with unpublished state — the latter is
            // what makes `sync_learner` mean "my feedback is being
            // served". Under a fast label stream batching amortizes
            // this naturally (a drain only empties the queue when the
            // producers have stopped outpacing us); under a trickle a
            // snapshot per drain is the price of the guarantee, and it
            // is cheap (one accumulator clone + sign pass + AM
            // transpose).
            if unpublished > 0
                && (unpublished >= config.snapshot_every || shared.learn.depth() == 0)
            {
                if let Ok(model) = learner.snapshot() {
                    let generation = shared.publish_model(model);
                    shared.obs.stats.record_snapshot();
                    shared
                        .obs
                        .event(TraceKind::SnapshotPublished, generation, unpublished as u64);
                    unpublished = 0;
                }
            }
        }
        shared.obs.stats.record_learn_consumed(n);
        shared.learn.mark_applied(n);
    }
}

/// Encode one sample to its integer (bipolar-sums) encoding, reusing
/// the trainer's scratch accumulator.
fn encode_sums<E: Encoder + ?Sized>(
    encoder: &E,
    scratch: &mut uhd_core::BitSliceAccumulator,
    input: &[u8],
) -> Result<Vec<i64>, HdcError> {
    scratch.clear();
    encoder.accumulate(input, scratch)?;
    Ok(scratch.bipolar_sums())
}

/// Stable ordinal for the dispatched kernel in the
/// [`TraceKind::KernelDispatched`] event payload.
fn kernel_ordinal(name: &str) -> u64 {
    match name {
        "avx2" => 1,
        "avx512" => 2,
        "neon" => 3,
        _ => 0, // scalar
    }
}

/// One worker shard: claim a micro-batch, snapshot the current model
/// generation once, answer every request in the batch through the
/// bit-sliced associative memory — attributing each request's life to
/// queue-wait / batch-compute / total along the way.
fn worker_loop<E: Encoder + ?Sized>(
    shared: &Shared<'_, E>,
    shard: usize,
    max_batch: usize,
    mode: InferenceMode,
) {
    let _shard_guard = ShardFailGuard(&shared.queue);
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    // Shard-local scratch: the bundling planes and the distance buffer
    // are reused across the shard's lifetime, so steady-state serving
    // allocates only the per-query hypervector.
    let mut scratch = uhd_core::BitSliceAccumulator::new(shared.encoder.dim());
    let mut dists: Vec<u32> = Vec::new();
    while shared.queue.pop_batch(max_batch, &mut batch) {
        // Poison recovery is sound: see `Shared::publish_model` —
        // model swaps are torn-free `Arc` replacements, so whatever
        // generation is in the slot is coherent.
        let snapshot = Arc::clone(
            &shared
                .model
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        shared.obs.stats.record_batch(batch.len());
        shared
            .obs
            .event(TraceKind::BatchFormed, shard as u64, batch.len() as u64);
        // One clock read covers the whole batch's queue-wait stamps.
        let dequeued_at = Instant::now();
        for request in &batch {
            shared.obs.record_queue_wait(
                shard,
                dequeued_at.saturating_duration_since(request.submitted_at),
            );
        }
        // A request is popped only after it has an outcome; if answering
        // panics, the guard errors out everything still claimed
        // (including the request being answered). Reversed so popping
        // from the back preserves FIFO answer order.
        batch.reverse();
        let claimed = BatchGuard(&mut batch);
        while let Some(request) = claimed.0.last() {
            let outcome = answer(
                shared.encoder,
                &snapshot,
                &request.input,
                mode,
                &mut scratch,
                &mut dists,
            );
            let request = claimed.0.pop().expect("nonempty: just peeked");
            // Record before completing: a client returning from its
            // wait must find its own latency already in the histogram
            // (count reconciles with the completion counter).
            shared.obs.record_total(request.submitted_at.elapsed());
            request.slot.complete(outcome);
        }
        shared.obs.record_compute(shard, dequeued_at.elapsed());
    }
}

fn answer<E: Encoder + ?Sized>(
    encoder: &E,
    snapshot: &ModelGeneration,
    input: &[u8],
    mode: InferenceMode,
    scratch: &mut uhd_core::BitSliceAccumulator,
    dists: &mut Vec<u32>,
) -> Result<Response, ServeError> {
    let (class, score) = match mode {
        // Fast path: allocation-free encode, then one plane-by-plane
        // pass over the model's bit-sliced associative memory
        // (bit-identical to `classify_encoded`, which delegates to the
        // same search).
        InferenceMode::BinarizedQuery => {
            let query = encoder.encode_into(input, scratch)?;
            snapshot
                .model
                .associative_memory()
                .nearest_with(&query, dists)?
        }
        InferenceMode::IntegerQuery | InferenceMode::IntegerBoth => {
            snapshot.model.classify_with(encoder, input, mode)?
        }
    };
    Ok(Response {
        class,
        score,
        generation: snapshot.generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Condvar;
    use uhd_core::encoder::uhd::{UhdConfig, UhdEncoder};
    use uhd_core::model::{InferenceMode, LabelledSamples};

    const PIXELS: usize = 8;

    fn fixture() -> (UhdEncoder, HdcModel, Vec<Vec<u8>>, Vec<usize>) {
        let encoder = UhdEncoder::new(UhdConfig::new(256, PIXELS)).unwrap();
        let images: Vec<Vec<u8>> = (0..20)
            .map(|i| vec![if i % 2 == 0 { 20u8 } else { 230 }; PIXELS])
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let data = LabelledSamples::new(&images, &labels).unwrap();
        let model = HdcModel::train(&encoder, data, 2).unwrap();
        (encoder, model, images, labels)
    }

    #[test]
    fn serves_and_matches_the_serial_binarized_path() {
        let (encoder, model, images, labels) = fixture();
        let serial: Vec<(usize, f64)> = images
            .iter()
            .map(|img| {
                model
                    .classify_with(&encoder, img, InferenceMode::BinarizedQuery)
                    .unwrap()
            })
            .collect();
        let responses = ServeEngine::serve(ServeConfig::new(2, 4), &encoder, model, |engine| {
            let r = engine.classify_many(&images).unwrap();
            let stats = engine.stats();
            assert_eq!(stats.submitted, images.len() as u64);
            r
        })
        .unwrap();
        for ((response, serial), &label) in responses.iter().zip(&serial).zip(&labels) {
            assert_eq!(response.class, serial.0);
            assert_eq!(response.score, serial.1);
            assert_eq!(response.generation, 0);
            assert_eq!(response.class, label, "fixture is separable");
        }
    }

    #[test]
    fn integer_mode_matches_serial_default_classify() {
        let (encoder, model, images, _) = fixture();
        let serial: Vec<(usize, f64)> = images
            .iter()
            .map(|img| model.classify(&encoder, img).unwrap())
            .collect();
        let responses = ServeEngine::serve(
            ServeConfig::new(2, 4).with_mode(InferenceMode::IntegerBoth),
            &encoder,
            model,
            |engine| engine.classify_many(&images).unwrap(),
        )
        .unwrap();
        for (response, serial) in responses.iter().zip(&serial) {
            assert_eq!((response.class, response.score), *serial);
        }
    }

    #[test]
    fn rejects_degenerate_configs_and_shape_mismatches() {
        let (encoder, model, _, _) = fixture();
        assert!(matches!(
            ServeEngine::serve(ServeConfig::new(0, 4), &encoder, model.clone(), |_| ()),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ServeEngine::serve(ServeConfig::new(1, 0), &encoder, model.clone(), |_| ()),
            Err(ServeError::InvalidConfig { .. })
        ));
        let small = UhdEncoder::new(UhdConfig::new(64, PIXELS)).unwrap();
        assert!(matches!(
            ServeEngine::serve(ServeConfig::new(1, 1), &small, model, |_| ()),
            Err(ServeError::ModelShapeMismatch { .. })
        ));
    }

    #[test]
    fn submit_rejects_wrong_image_sizes_eagerly() {
        let (encoder, model, _, _) = fixture();
        ServeEngine::serve(ServeConfig::new(1, 4), &encoder, model, |engine| {
            assert!(matches!(
                engine.submit(vec![0u8; PIXELS + 1]),
                Err(ServeError::Core(HdcError::ImageSizeMismatch { .. }))
            ));
        })
        .unwrap();
    }

    #[test]
    fn update_model_bumps_generation_and_checks_shape() {
        let (encoder, model, images, _) = fixture();
        ServeEngine::serve(ServeConfig::new(2, 4), &encoder, model.clone(), |engine| {
            assert_eq!(engine.generation(), 0);
            let gen = engine.update_model(model.clone()).unwrap();
            assert_eq!(gen, 1);
            assert_eq!(engine.generation(), 1);
            let response = engine.classify(&images[0]).unwrap();
            assert_eq!(response.generation, 1);
            // A model trained at a different dimension is rejected.
            let tiny_encoder = UhdEncoder::new(UhdConfig::new(64, PIXELS)).unwrap();
            let tiny_images: Vec<Vec<u8>> = vec![vec![10u8; PIXELS], vec![200u8; PIXELS]];
            let tiny_labels = vec![0usize, 1];
            let tiny_data = LabelledSamples::new(&tiny_images, &tiny_labels).unwrap();
            let tiny_model = HdcModel::train(&tiny_encoder, tiny_data, 2).unwrap();
            assert!(matches!(
                engine.update_model(tiny_model),
                Err(ServeError::ModelShapeMismatch { .. })
            ));
            assert_eq!(engine.stats().model_swaps, 1);
        })
        .unwrap();
    }

    #[test]
    fn learn_rejects_bad_inputs_eagerly() {
        let (encoder, model, _, _) = fixture();
        ServeEngine::serve(
            ServeConfig::new(1, 4).with_max_classes(4),
            &encoder,
            model,
            |engine| {
                assert!(matches!(
                    engine.learn(vec![0u8; PIXELS + 2], 0),
                    Err(ServeError::Core(HdcError::ImageSizeMismatch { .. }))
                ));
                assert!(matches!(
                    engine.learn(vec![0u8; PIXELS], 4),
                    Err(ServeError::InvalidLabel { label: 4, limit: 4 })
                ));
                assert!(matches!(
                    engine.feedback(vec![0u8; PIXELS], 9, 0),
                    Err(ServeError::InvalidLabel { label: 9, limit: 4 })
                ));
                // Nothing reached the queue.
                assert_eq!(engine.stats().learn_submitted, 0);
                assert_eq!(engine.learn_queue_depth(), 0);
            },
        )
        .unwrap();
    }

    #[test]
    fn degenerate_learning_configs_are_rejected() {
        let (encoder, model, _, _) = fixture();
        assert!(matches!(
            ServeEngine::serve(
                ServeConfig::new(1, 1).with_snapshot_every(0),
                &encoder,
                model.clone(),
                |_| ()
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
        // The initial model already exceeds the admission cap.
        assert!(matches!(
            ServeEngine::serve(
                ServeConfig::new(1, 1).with_max_classes(1),
                &encoder,
                model.clone(),
                |_| ()
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
        // A zero shed threshold would reject every request.
        assert!(matches!(
            ServeEngine::serve(
                ServeConfig::new(1, 1).with_shed_above(0),
                &encoder,
                model,
                |_| ()
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn learning_publishes_snapshots_and_reconciles_counters() {
        let (encoder, model, images, labels) = fixture();
        ServeEngine::serve(ServeConfig::new(2, 4), &encoder, model, |engine| {
            for (image, &label) in images.iter().zip(&labels) {
                engine.learn(image.clone(), label).unwrap();
            }
            engine.sync_learner();
            let stats = engine.stats();
            assert_eq!(stats.learn_submitted, images.len() as u64);
            assert_eq!(stats.learn_consumed, stats.learn_submitted);
            assert_eq!(stats.learn_updates, stats.learn_submitted);
            assert_eq!(stats.learn_rejected, 0);
            assert!(stats.snapshots_published >= 1);
            assert_eq!(stats.model_swaps, 0, "trainer publishes are not swaps");
            assert!(engine.generation() >= 1);
            // The refreshed generation still separates the fixture.
            let response = engine.classify(&images[0]).unwrap();
            assert_eq!(response.class, labels[0]);
            assert!(response.generation >= 1);
        })
        .unwrap();
    }

    #[test]
    fn update_model_reseeds_the_online_learner() {
        // Regression: the trainer used to keep learner state seeded
        // from the *initial* model forever, so one learn() sample
        // after a manual update_model would hot-publish a snapshot
        // derived from the stale initial model, clobbering the swap.
        let (encoder, model, images, labels) = fixture();
        let swapped_labels: Vec<usize> = labels.iter().map(|&l| 1 - l).collect();
        let data = LabelledSamples::new(&images, &swapped_labels).unwrap();
        let swapped = HdcModel::train(&encoder, data, 2).unwrap();
        ServeEngine::serve(ServeConfig::new(1, 4), &encoder, model, |engine| {
            engine.update_model(swapped.clone()).unwrap();
            assert_eq!(engine.classify(&images[0]).unwrap().class, 1 - labels[0]);
            // One sample consistent with the swapped labelling; the
            // resulting snapshot must derive from the swapped model.
            engine.learn(images[0].clone(), 1 - labels[0]).unwrap();
            engine.sync_learner();
            assert!(engine.stats().snapshots_published >= 1);
            for (image, &label) in images.iter().zip(&labels) {
                assert_eq!(
                    engine.classify(image).unwrap().class,
                    1 - label,
                    "post-swap learning must continue from the swapped model"
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn correct_feedback_publishes_nothing() {
        let (encoder, model, images, labels) = fixture();
        ServeEngine::serve(ServeConfig::new(1, 4), &encoder, model, |engine| {
            // Feedback agreeing with the label applies no update, so
            // the trainer has nothing to publish.
            for (image, &label) in images.iter().zip(&labels) {
                engine.feedback(image.clone(), label, label).unwrap();
            }
            engine.sync_learner();
            let stats = engine.stats();
            assert_eq!(stats.learn_consumed, images.len() as u64);
            assert_eq!(stats.learn_updates, 0);
            assert_eq!(stats.snapshots_published, 0);
            assert_eq!(engine.generation(), 0);
        })
        .unwrap();
    }

    #[test]
    fn pending_learn_samples_are_drained_at_shutdown() {
        let (encoder, model, images, labels) = fixture();
        let stats = ServeEngine::serve(ServeConfig::new(1, 2), &encoder, model, |engine| {
            for (image, &label) in images.iter().zip(&labels) {
                engine.learn(image.clone(), label).unwrap();
            }
            // No sync: shutdown must drain the learner queue anyway.
            engine.stats()
        })
        .unwrap();
        // The closure's snapshot may predate the drain; what matters is
        // that serve() returned at all (the trainer exited cleanly)
        // and accepted every sample.
        assert_eq!(stats.learn_submitted, images.len() as u64);
    }

    #[test]
    fn pending_requests_are_drained_at_shutdown() {
        let (encoder, model, images, _) = fixture();
        let tickets = ServeEngine::serve(ServeConfig::new(1, 2), &encoder, model, |engine| {
            images
                .iter()
                .map(|img| engine.submit(img.clone()).unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        // The scope has exited: every ticket submitted before shutdown
        // must still have been answered.
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    /// Delegates to a real encoder but panics on a poison image —
    /// stands in for a buggy user-supplied `Encoder`.
    struct PanickingEncoder(UhdEncoder);

    impl Encoder for PanickingEncoder {
        fn dim(&self) -> u32 {
            self.0.dim()
        }
        fn features(&self) -> usize {
            self.0.features()
        }
        fn accumulate(
            &self,
            image: &[u8],
            acc: &mut uhd_core::BitSliceAccumulator,
        ) -> Result<(), HdcError> {
            assert!(image[0] != 255, "poison image");
            self.0.accumulate(image, acc)
        }
        fn profile(&self) -> uhd_core::EncoderProfile {
            self.0.profile()
        }
    }

    #[test]
    fn worker_panic_fails_requests_instead_of_deadlocking() {
        let (encoder, model, images, _) = fixture();
        let encoder = PanickingEncoder(encoder);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ServeEngine::serve(ServeConfig::new(1, 4), &encoder, model, |engine| {
                let poison = engine.submit(vec![255u8; PIXELS]).unwrap();
                let follow = engine.submit(images[0].clone()).unwrap();
                // Neither wait may hang. The poisoned request (and
                // anything the dying shard had claimed or left queued)
                // resolves to WorkerPanicked.
                assert!(matches!(poison.wait(), Err(ServeError::WorkerPanicked)));
                // The follow-up either was answered before the shard
                // died or is errored out — it must return either way.
                let _ = follow.wait();
            })
        }));
        assert!(
            result.is_err(),
            "the worker's panic must propagate out of the serve scope"
        );
    }

    #[test]
    fn poisoned_locks_recover_instead_of_bricking_the_engine() {
        // Regression: the engine used to `expect("… lock poisoned")`
        // on every model/learner lock, so one writer panicking while
        // holding a guard turned every subsequent classify into a
        // panic. Swaps are torn-free Arc replacements, so recovery is
        // sound — verify the pool keeps serving.
        let (encoder, model, images, labels) = fixture();
        ServeEngine::serve(ServeConfig::new(1, 4), &encoder, model.clone(), |engine| {
            // A writer dies while holding the model lock.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = engine.shared.model.write().unwrap();
                panic!("writer dies mid-swap");
            }));
            assert!(engine.shared.model.is_poisoned());
            // Classifies, generation reads and hot swaps still work.
            assert_eq!(engine.classify(&images[0]).unwrap().class, labels[0]);
            assert_eq!(engine.generation(), 0);
            assert_eq!(engine.update_model(model.clone()).unwrap(), 1);
            assert_eq!(engine.classify(&images[1]).unwrap().generation, 1);
            // Same for the learner lock: online learning continues.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = engine.shared.learner.lock().unwrap();
                panic!("learner writer dies");
            }));
            assert!(engine.shared.learner.is_poisoned());
            engine.learn(images[0].clone(), labels[0]).unwrap();
            engine.sync_learner();
            assert_eq!(engine.stats().learn_consumed, 1);
            assert_eq!(engine.classify(&images[0]).unwrap().class, labels[0]);
        })
        .unwrap();
    }

    /// Delegates to a real encoder but parks every `accumulate` until
    /// the gate opens — freezes the worker pool so tests can build a
    /// queue backlog deterministically.
    struct GateEncoder {
        inner: UhdEncoder,
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    impl GateEncoder {
        fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
            *gate.0.lock().unwrap() = true;
            gate.1.notify_all();
        }
    }

    impl Encoder for GateEncoder {
        fn dim(&self) -> u32 {
            self.inner.dim()
        }
        fn features(&self) -> usize {
            self.inner.features()
        }
        fn accumulate(
            &self,
            image: &[u8],
            acc: &mut uhd_core::BitSliceAccumulator,
        ) -> Result<(), HdcError> {
            let (open, released) = &*self.gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = released.wait(open).unwrap();
            }
            drop(open);
            self.inner.accumulate(image, acc)
        }
        fn profile(&self) -> uhd_core::EncoderProfile {
            self.inner.profile()
        }
    }

    #[test]
    fn admission_control_sheds_past_the_threshold() {
        let (encoder, model, images, _) = fixture();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let encoder = GateEncoder {
            inner: encoder,
            gate: Arc::clone(&gate),
        };
        ServeEngine::serve(
            ServeConfig::new(1, 1).with_shed_above(2),
            &encoder,
            model,
            |engine| {
                // The lone worker claims the first request and parks in
                // the gated encoder, leaving the queue empty.
                let parked = engine.submit(images[0].clone()).unwrap();
                while engine.shared.queue.depth() != 0 {
                    std::thread::yield_now();
                }
                // Fill the queue to the threshold…
                let queued = [
                    engine.submit(images[0].clone()).unwrap(),
                    engine.submit(images[1].clone()).unwrap(),
                ];
                // …past it, the single-lock depth check says no.
                match engine.submit(images[2].clone()) {
                    Err(ServeError::Overloaded { depth, shed_above }) => {
                        assert_eq!(depth, 2);
                        assert_eq!(shed_above, 2);
                    }
                    other => panic!("expected Overloaded, got {other:?}"),
                }
                // Waves are shed whole against the same threshold.
                assert!(matches!(
                    engine.submit_many(&images[..1]),
                    Err(ServeError::Overloaded { .. })
                ));
                assert_eq!(engine.stats().requests_shed, 2);
                assert_eq!(engine.stats().submitted, 3);
                // Open the gate: everything admitted still completes.
                GateEncoder::release(&gate);
                assert!(parked.wait().is_ok());
                for ticket in queued {
                    assert!(ticket.wait().is_ok());
                }
            },
        )
        .unwrap();
    }

    #[test]
    fn trait_object_encoders_are_servable() {
        let (encoder, model, images, _) = fixture();
        let dyn_encoder: &dyn Encoder = &encoder;
        let response = ServeEngine::serve(ServeConfig::new(1, 1), dyn_encoder, model, |engine| {
            engine.classify(&images[0]).unwrap()
        })
        .unwrap();
        assert_eq!(response.generation, 0);
    }

    #[test]
    fn rematerialized_encoders_serve_identically() {
        // A fleet host can swap the resident threshold planes for the
        // O(seed) rematerialized backend without changing a single
        // answer: both encoders derive the same rows, so the served
        // responses agree bit for bit.
        let (encoder, model, images, _) = fixture();
        let remat = UhdEncoder::new(encoder.config().clone().rematerialized()).unwrap();
        assert!(
            remat.profile().resident_bytes < encoder.profile().resident_bytes,
            "rematerialized serving must hold less heap than resident serving"
        );
        let resident_answers =
            ServeEngine::serve(ServeConfig::new(1, 2), &encoder, model.clone(), |engine| {
                engine.classify_many(&images).unwrap()
            })
            .unwrap();
        let remat_answers = ServeEngine::serve(ServeConfig::new(1, 2), &remat, model, |engine| {
            engine.classify_many(&images).unwrap()
        })
        .unwrap();
        for (a, b) in resident_answers.iter().zip(remat_answers.iter()) {
            assert_eq!(a.class, b.class);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}
