//! A minimal, dependency-free HTTP/1.1 front end over
//! [`ModelRegistry`], on [`std::net::TcpListener`].
//!
//! This is deliberately *not* a general web server: it parses exactly
//! the subset of HTTP/1.1 the serving API needs (request line, headers,
//! `Content-Length` bodies, keep-alive) and nothing else — no chunked
//! transfer, no TLS, no compression. The wire protocol:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/{tenant}/classify` | body = raw feature bytes → `{"class":…,"score":…,"generation":…}` |
//! | `POST /v1/{tenant}/learn?label=N` | body = raw feature bytes → `{"generation":…}` |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /metrics.json` | the same metrics as JSON |
//! | `GET /tenants` | JSON array of tenant names |
//! | `GET /healthz` | `ok` |
//!
//! Serving errors map onto status codes the obvious way:
//! [`ServeError::UnknownTenant`] → 404, malformed inputs
//! ([`ServeError::Core`] / [`ServeError::InvalidLabel`]) → 400,
//! [`ServeError::Overloaded`] → 503 with a `Retry-After` header (the
//! admission-control contract made visible to HTTP clients), shutdown
//! → 503, everything else → 500. Oversized inputs are bounded on both
//! sides of the body divide: bodies past `max_body` get `413`, and a
//! request line + header section past 8 KiB (`MAX_HEAD_BYTES`) gets
//! `431` — the server never buffers an unbounded header stream.

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing and socket knobs for [`HttpServer::start`].
#[derive(Debug, Clone)]
pub struct HttpServerConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound
    /// address is reported by [`HttpServer::local_addr`]).
    pub addr: String,
    /// Largest accepted request body; longer bodies get `413`.
    pub max_body: usize,
    /// Per-connection read timeout: an idle keep-alive connection is
    /// dropped after this long, bounding handler-thread lifetime.
    pub read_timeout: Duration,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        HttpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_body: 1 << 20,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A running HTTP front end: one accept thread, one detached handler
/// thread per connection, all serving a shared [`ModelRegistry`].
#[derive(Debug)]
pub struct HttpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// A second handle to the accept thread's listener (same OS
    /// socket): lets [`HttpServer::shutdown`] flip it nonblocking so
    /// the accept loop cannot re-park after being woken.
    listener: TcpListener,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `config.addr` and start accepting connections against
    /// `registry`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure to bind or inspect the listener.
    pub fn start(registry: Arc<ModelRegistry>, config: HttpServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown_listener = listener.try_clone()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("uhd-http-accept".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if accept_shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let registry = Arc::clone(&registry);
                        let config = config.clone();
                        let _ = std::thread::Builder::new()
                            .name("uhd-http-conn".to_string())
                            .spawn(move || handle_connection(stream, &registry, &config));
                    }
                    Err(_) => {
                        // Post-shutdown the listener is nonblocking, so
                        // `WouldBlock` lands here and the flag breaks
                        // the loop; otherwise it is a transient accept
                        // failure (EMFILE, aborted handshake) — back
                        // off briefly instead of spinning.
                        if accept_shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            })?;
        Ok(HttpServer {
            local_addr,
            shutdown,
            listener: shutdown_listener,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address actually bound (resolves port 0 to the ephemeral
    /// port picked by the OS).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting new connections and join the accept thread.
    /// In-flight handler threads finish their current request and die
    /// with their connections (bounded by the read timeout).
    /// Idempotent; also run by `Drop`. Does **not** shut down the
    /// registry — callers own that lifecycle.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Future accepts fail fast instead of parking (the cloned
        // handle shares the OS socket, so this reaches the accept
        // thread's listener too).
        let _ = self.listener.set_nonblocking(true);
        // A thread already parked in `accept()` still needs a poke. A
        // wildcard bind is not a routable connect target, so aim at
        // loopback on the bound port instead.
        let ip = self.local_addr.ip();
        let wake_ip = if ip.is_unspecified() {
            if ip.is_ipv4() {
                IpAddr::V4(Ipv4Addr::LOCALHOST)
            } else {
                IpAddr::V6(Ipv6Addr::LOCALHOST)
            }
        } else {
            ip
        };
        let wake = SocketAddr::new(wake_ip, self.local_addr.port());
        let woken = TcpStream::connect_timeout(&wake, Duration::from_millis(250)).is_ok();
        if let Some(handle) = self.accept_thread.take() {
            if woken {
                let _ = handle.join();
            }
            // If the connect was refused or filtered (firewalled
            // wildcard bind, unroutable address) the thread may still
            // be parked; it exits on the next connection attempt, and
            // dropping the handle detaches it rather than blocking
            // shutdown forever on `join()`.
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One parsed request: line, the headers we care about, body.
struct HttpRequest {
    method: String,
    /// Path with the query string split off.
    path: String,
    /// Raw query string (no leading `?`), empty when absent.
    query: String,
    keep_alive: bool,
    body: Vec<u8>,
}

/// Why a request could not be parsed (distinct from a serving error:
/// these end the connection after a `4xx`).
#[derive(Debug)]
enum ParseError {
    /// Clean EOF between requests — the peer closed a keep-alive
    /// connection; not an error at all.
    Eof,
    /// Malformed request line/headers, or an I/O error mid-request.
    Malformed(&'static str),
    /// A `Content-Length` past the configured cap.
    TooLarge,
    /// Request line + headers past [`MAX_HEAD_BYTES`] cumulatively.
    HeadTooLarge,
}

/// Cumulative cap on the request line plus all header lines. Bodies
/// are bounded by `max_body`; this bounds everything before the body,
/// so a client streaming an endless header line cannot grow server
/// memory past this.
const MAX_HEAD_BYTES: usize = 8 * 1024;

fn handle_connection(stream: TcpStream, registry: &ModelRegistry, config: &HttpServerConfig) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, config.max_body) {
            Ok(request) => {
                let keep_alive = request.keep_alive;
                let response = route(&request, registry);
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ParseError::Eof) => return,
            Err(ParseError::TooLarge) => {
                let response = HttpResponse::json(413, "{\"error\":\"body too large\"}");
                let _ = write_response(&mut writer, &response, false);
                return;
            }
            Err(ParseError::HeadTooLarge) => {
                let response =
                    HttpResponse::json(431, "{\"error\":\"request header section too large\"}");
                let _ = write_response(&mut writer, &response, false);
                return;
            }
            Err(ParseError::Malformed(reason)) => {
                let response =
                    HttpResponse::json(400, &format!("{{\"error\":{}}}", json_string(reason)));
                let _ = write_response(&mut writer, &response, false);
                return;
            }
        }
    }
}

fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<HttpRequest, ParseError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let mut line = String::new();
    match read_head_line(reader, &mut line, &mut head_budget) {
        // A closed socket, a read timeout, or a reset all end the
        // connection the same way: no request to serve.
        Ok(0) | Err(_) => return Err(ParseError::Eof),
        Ok(_) if !line.ends_with('\n') && head_budget == 0 => return Err(ParseError::HeadTooLarge),
        Ok(_) => {}
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    // HTTP/1.1 defaults to keep-alive; 1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match read_head_line(reader, &mut header, &mut head_budget) {
            Ok(0) if head_budget == 0 => return Err(ParseError::HeadTooLarge),
            Ok(0) => return Err(ParseError::Malformed("eof inside headers")),
            Ok(_) if !header.ends_with('\n') && head_budget == 0 => {
                return Err(ParseError::HeadTooLarge)
            }
            Ok(_) => {}
            Err(_) => return Err(ParseError::Malformed("read error inside headers")),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed("header without colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ParseError::Malformed("unparseable content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > max_body {
        return Err(ParseError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ParseError::Malformed("body shorter than content-length"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(HttpRequest {
        method: method.to_string(),
        path,
        query,
        keep_alive,
        body,
    })
}

/// Read one `\n`-terminated line into `out`, charging every byte
/// against `budget` — the reader never buffers more than `budget`
/// bytes, however long the peer's line is. Returns the bytes read;
/// `0` means EOF, a line without a trailing `\n` alongside an
/// exhausted budget means the cap was hit mid-line.
fn read_head_line(
    reader: &mut impl BufRead,
    out: &mut String,
    budget: &mut usize,
) -> io::Result<usize> {
    let n = reader.take(*budget as u64).read_line(out)?;
    *budget -= n;
    Ok(n)
}

/// A response ready to serialize: status, content type, body.
struct HttpResponse {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    retry_after: bool,
}

impl HttpResponse {
    fn json(status: u16, body: &str) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.as_bytes().to_vec(),
            retry_after: false,
        }
    }

    fn text(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            retry_after: false,
        }
    }
}

fn route(request: &HttpRequest, registry: &ModelRegistry) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => HttpResponse::json(200, "{\"status\":\"ok\"}"),
        ("GET", "/metrics") => HttpResponse::text(200, registry.render_metrics()),
        ("GET", "/metrics.json") => HttpResponse::json(200, &registry.metrics_json()),
        ("GET", "/tenants") => {
            let names: Vec<String> = registry
                .tenants()
                .into_iter()
                .map(|n| json_string(&n))
                .collect();
            HttpResponse::json(200, &format!("[{}]", names.join(",")))
        }
        ("POST", path) => route_tenant_post(path, request, registry),
        _ => HttpResponse::json(404, "{\"error\":\"no such route\"}"),
    }
}

/// `POST /v1/{tenant}/classify` and `POST /v1/{tenant}/learn`.
fn route_tenant_post(path: &str, request: &HttpRequest, registry: &ModelRegistry) -> HttpResponse {
    let Some(rest) = path.strip_prefix("/v1/") else {
        return HttpResponse::json(404, "{\"error\":\"no such route\"}");
    };
    let Some((tenant, action)) = rest.split_once('/') else {
        return HttpResponse::json(404, "{\"error\":\"no such route\"}");
    };
    match action {
        "classify" => match registry.classify(tenant, &request.body) {
            Ok(response) => HttpResponse::json(
                200,
                &format!(
                    "{{\"class\":{},\"score\":{},\"generation\":{}}}",
                    response.class, response.score, response.generation
                ),
            ),
            Err(e) => error_response(&e),
        },
        "learn" => {
            let Some(label) = query_param(&request.query, "label").and_then(|v| v.parse().ok())
            else {
                return HttpResponse::json(
                    400,
                    "{\"error\":\"learn requires an integer ?label= parameter\"}",
                );
            };
            match registry.learn(tenant, &request.body, label) {
                Ok(generation) => {
                    HttpResponse::json(200, &format!("{{\"generation\":{generation}}}"))
                }
                Err(e) => error_response(&e),
            }
        }
        _ => HttpResponse::json(404, "{\"error\":\"no such route\"}"),
    }
}

/// Map a serving error onto a status code (see the module docs table).
fn error_response(error: &ServeError) -> HttpResponse {
    let status = match error {
        ServeError::UnknownTenant { .. } => 404,
        ServeError::Core(_) | ServeError::InvalidLabel { .. } => 400,
        ServeError::Overloaded { .. } | ServeError::Closed => 503,
        _ => 500,
    };
    let mut response = HttpResponse::json(
        status,
        &format!("{{\"error\":{}}}", json_string(&error.to_string())),
    );
    // The load-shedding contract on the wire: overloaded means "come
    // back, soon" — not "give up".
    response.retry_after = matches!(error, ServeError::Overloaded { .. });
    response
}

fn write_response(
    writer: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry = if response.retry_after {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n{}\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len(),
        connection,
        retry,
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// Extract `name` from an `a=1&b=2` query string.
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

/// Serialize a string as a JSON string literal (quotes, backslashes
/// and control characters escaped — tenant names are already
/// restricted, but error messages are free-form).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_the_dangerous_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(query_param("label=3&x=1", "label"), Some("3"));
        assert_eq!(query_param("x=1", "label"), None);
        assert_eq!(query_param("", "label"), None);
    }

    #[test]
    fn request_heads_are_byte_bounded() {
        // A well-formed request inside the budget parses.
        let mut ok = io::Cursor::new(
            b"POST /v1/t/classify HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec(),
        );
        let request = read_request(&mut ok, 1 << 20).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"abc");

        // One endless header line: rejected at the cap, not buffered
        // until the peer relents.
        let mut raw = b"GET /metrics HTTP/1.1\r\nX-Flood: ".to_vec();
        raw.resize(4 * MAX_HEAD_BYTES, b'a');
        let mut flood = io::Cursor::new(raw);
        assert!(matches!(
            read_request(&mut flood, 1 << 20),
            Err(ParseError::HeadTooLarge)
        ));
        // The reader stopped at the budget — the rest of the flood was
        // never pulled into memory.
        assert!(flood.position() as usize <= MAX_HEAD_BYTES);

        // Many small headers cumulatively past the cap: same verdict.
        let mut raw = b"GET /metrics HTTP/1.1\r\n".to_vec();
        while raw.len() <= MAX_HEAD_BYTES {
            raw.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            read_request(&mut io::Cursor::new(raw), 1 << 20),
            Err(ParseError::HeadTooLarge)
        ));

        // An endless request line (no header ever arrives) is also cut.
        let mut raw = b"GET /".to_vec();
        raw.resize(4 * MAX_HEAD_BYTES, b'x');
        assert!(matches!(
            read_request(&mut io::Cursor::new(raw), 1 << 20),
            Err(ParseError::HeadTooLarge)
        ));
    }

    #[test]
    fn error_statuses_follow_the_table() {
        assert_eq!(
            error_response(&ServeError::UnknownTenant {
                name: "t".to_string()
            })
            .status,
            404
        );
        assert_eq!(
            error_response(&ServeError::InvalidLabel { label: 9, limit: 4 }).status,
            400
        );
        let overloaded = error_response(&ServeError::Overloaded {
            depth: 8,
            shed_above: 8,
        });
        assert_eq!(overloaded.status, 503);
        assert!(overloaded.retry_after);
        assert_eq!(error_response(&ServeError::Closed).status, 503);
        assert_eq!(error_response(&ServeError::WorkerPanicked).status, 500);
    }
}
