//! Error types for the `uhd-serve` crate.

use std::error::Error;
use std::fmt;
use uhd_core::HdcError;

/// Errors produced by the serving engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// An encoding or classification error bubbled up from `uhd-core`.
    Core(HdcError),
    /// The engine has shut down; no further requests are accepted.
    Closed,
    /// A worker shard panicked (e.g. a buggy custom encoder) before
    /// this request could be answered. The request was *not* lost
    /// silently: pending tickets are errored out so no client blocks
    /// forever, and the original panic propagates when the serve scope
    /// joins its workers.
    WorkerPanicked,
    /// Engine configuration rejected (zero shards or batch size).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A swapped-in model's dimension disagrees with the engine's
    /// encoder.
    ModelShapeMismatch {
        /// Dimension the engine's encoder produces.
        expected_dim: u32,
        /// Dimension of the offending model.
        got_dim: u32,
    },
    /// A labelled sample named a class index at or beyond the engine's
    /// admission cap ([`crate::ServeConfig::max_classes`]); rejected
    /// eagerly, before it reaches the learner queue.
    InvalidLabel {
        /// The offending class index.
        label: usize,
        /// The engine's class admission cap.
        limit: usize,
    },
    /// Load shedding: the request queue already held the admission
    /// threshold ([`crate::ServeConfig::shed_above`], shared by the
    /// engine and the registry) when this submit arrived, so it was
    /// rejected immediately instead of queueing unboundedly. Back off
    /// and retry.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The configured admission threshold.
        shed_above: usize,
    },
    /// A registry operation named a tenant that is not registered.
    UnknownTenant {
        /// The tenant name the caller asked for.
        name: String,
    },
    /// A tenant with this name is already registered.
    DuplicateTenant {
        /// The contested tenant name.
        name: String,
    },
    /// Persisting or loading a tenant snapshot failed (filesystem
    /// error or a file that does not decode as a model). The reason is
    /// carried as text so the error stays `Clone`/`PartialEq` like the
    /// rest of the enum.
    Persist {
        /// Human-readable failure description.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "classification failed: {e}"),
            ServeError::Closed => write!(f, "serving engine is shut down"),
            ServeError::WorkerPanicked => {
                write!(f, "a worker shard panicked before answering this request")
            }
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            ServeError::ModelShapeMismatch {
                expected_dim,
                got_dim,
            } => write!(
                f,
                "model dimension {got_dim} does not match encoder dimension {expected_dim}"
            ),
            ServeError::InvalidLabel { label, limit } => write!(
                f,
                "label {label} at or beyond the engine's class admission cap {limit}"
            ),
            ServeError::Overloaded { depth, shed_above } => write!(
                f,
                "overloaded: queue depth {depth} at or above admission threshold {shed_above}"
            ),
            ServeError::UnknownTenant { name } => write!(f, "unknown tenant {name:?}"),
            ServeError::DuplicateTenant { name } => {
                write!(f, "tenant {name:?} is already registered")
            }
            ServeError::Persist { reason } => write!(f, "snapshot persistence failed: {reason}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdcError> for ServeError {
    fn from(e: HdcError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::from(HdcError::ModelUntrained);
        assert!(e.to_string().contains("classification failed"));
        assert!(e.source().is_some());
        assert!(ServeError::Closed.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
