//! The [`Recorder`] facade: a named registry of counters, gauges, and
//! histograms plus the trace-event ring, with Prometheus-style text
//! and JSON exposition.
//!
//! Handles ([`Counter`], [`Gauge`], `Arc<Histogram>`) are cheap clones
//! of shared atomics: registration takes a short mutex on the registry
//! vector once, after which the hot path touches no locks at all. A
//! disabled recorder ([`Recorder::noop`]) hands out the same handle
//! types backed by dead cells, so instrumented code needs no branches —
//! the cost of "telemetry off" is the same relaxed `fetch_add`s landing
//! in unobserved memory.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::events::{EventLog, TraceEvent, TraceKind, TraceLevel, DEFAULT_EVENT_CAPACITY};
use crate::histogram::{Histogram, HistogramSnapshot};

/// Quantiles every histogram exposes in both exposition formats.
pub const EXPOSED_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// A monotonically increasing named metric.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named metric that can move in both directions, with a helper for
/// high-water tracking.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently lower (lock-free
    /// high-water mark).
    pub fn set_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Label set attached to a metric, e.g. `[("shard", "0")]`.
type Labels = Vec<(String, String)>;

#[derive(Debug)]
enum MetricCell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    labels: Labels,
    cell: MetricCell,
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    metrics: Mutex<Vec<MetricEntry>>,
    events: EventLog,
    epoch: Instant,
}

/// The observability facade: get-or-register named metrics, push trace
/// events, render everything. Cloning shares the same registry.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    /// An active recorder tracing at `level`.
    #[must_use]
    pub fn new(level: TraceLevel) -> Self {
        Recorder::build(true, level)
    }

    /// An active recorder whose trace level follows the `UHD_LOG`
    /// environment knob.
    #[must_use]
    pub fn from_env() -> Self {
        Recorder::new(TraceLevel::from_env())
    }

    /// A disabled recorder: hands out working handles whose values are
    /// never rendered, records no events. Lets instrumented code run
    /// branch-free whether telemetry is on or off.
    #[must_use]
    pub fn noop() -> Self {
        Recorder::build(false, TraceLevel::Off)
    }

    fn build(enabled: bool, level: TraceLevel) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled,
                metrics: Mutex::new(Vec::new()),
                events: EventLog::new(level, DEFAULT_EVENT_CAPACITY),
                epoch: Instant::now(),
            }),
        }
    }

    /// Whether this recorder renders anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The trace verbosity of the event ring.
    #[must_use]
    pub fn level(&self) -> TraceLevel {
        self.inner.events.level()
    }

    /// Microseconds since this recorder was created.
    #[must_use]
    pub fn uptime_micros(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn lookup(&self, name: &str, labels: &[(&str, &str)]) -> Option<MetricCell> {
        let metrics = self
            .inner
            .metrics
            .lock()
            .expect("metrics registry poisoned");
        metrics
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels)
                        .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
            })
            .map(|e| match &e.cell {
                MetricCell::Counter(c) => MetricCell::Counter(c.clone()),
                MetricCell::Gauge(g) => MetricCell::Gauge(g.clone()),
                MetricCell::Histogram(h) => MetricCell::Histogram(Arc::clone(h)),
            })
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], cell: MetricCell) {
        let mut metrics = self
            .inner
            .metrics
            .lock()
            .expect("metrics registry poisoned");
        metrics.push(MetricEntry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            cell,
        });
    }

    /// Get or register the counter `name` with no labels.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or register the counter `name{labels}`. Re-registering the
    /// same name+labels returns a handle to the same cell.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        if let Some(MetricCell::Counter(c)) = self.lookup(name, labels) {
            return c;
        }
        let c = Counter::new();
        self.register(name, labels, MetricCell::Counter(c.clone()));
        c
    }

    /// Get or register the gauge `name` with no labels.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or register the gauge `name{labels}`.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        if let Some(MetricCell::Gauge(g)) = self.lookup(name, labels) {
            return g;
        }
        let g = Gauge::new();
        self.register(name, labels, MetricCell::Gauge(g.clone()));
        g
    }

    /// Get or register the histogram `name` with no labels.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get or register the histogram `name{labels}`.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        if let Some(MetricCell::Histogram(h)) = self.lookup(name, labels) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        self.register(name, labels, MetricCell::Histogram(Arc::clone(&h)));
        h
    }

    /// Push a trace event (dropped when disabled or below the level).
    pub fn event(&self, kind: TraceKind, a: u64, b: u64) {
        if self.inner.enabled {
            self.inner.events.push(kind, a, b);
        }
    }

    /// Decode the trace events currently resident in the ring.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.events()
    }

    /// Render every registered metric in the Prometheus text
    /// exposition format (counters, gauges, and histograms as
    /// summaries with `quantile` labels plus `_sum`/`_count` series).
    /// A disabled recorder renders the empty string.
    #[must_use]
    pub fn render_text(&self) -> String {
        if !self.inner.enabled {
            return String::new();
        }
        let mut out = String::new();
        for (name, group) in self.grouped() {
            let type_name = match group[0].1 {
                RenderCell::Counter(_) => "counter",
                RenderCell::Gauge(_) => "gauge",
                RenderCell::Histogram(_) => "summary",
            };
            let _ = writeln!(out, "# TYPE {name} {type_name}");
            for (labels, cell) in &group {
                match cell {
                    RenderCell::Counter(v) | RenderCell::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {v}", text_labels(labels, None));
                    }
                    RenderCell::Histogram(snap) => {
                        for q in EXPOSED_QUANTILES {
                            let _ = writeln!(
                                out,
                                "{name}{} {}",
                                text_labels(labels, Some(q)),
                                snap.quantile(q)
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            text_labels(labels, None),
                            snap.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            text_labels(labels, None),
                            snap.count()
                        );
                    }
                }
            }
        }
        out
    }

    /// Render every registered metric as a JSON object with
    /// `"counters"`, `"gauges"`, and `"histograms"` maps, keyed by
    /// `name` or `name{k=v,...}`. Parseable by the workspace's minimal
    /// RFC-8259 parser (`uhd_bench::json`). A disabled recorder
    /// renders `{}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        if !self.inner.enabled {
            return "{}".to_string();
        }
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, group) in self.grouped() {
            for (labels, cell) in group {
                let key = json_key(&name, &labels);
                match cell {
                    RenderCell::Counter(v) => counters.push(format!("\"{key}\": {v}")),
                    RenderCell::Gauge(v) => gauges.push(format!("\"{key}\": {v}")),
                    RenderCell::Histogram(snap) => {
                        let quantiles: Vec<String> = EXPOSED_QUANTILES
                            .iter()
                            .map(|&q| {
                                let tag = format!("p{}", (q * 1000.0).round() / 10.0);
                                let tag = tag.replace('.', "_");
                                format!("\"{tag}\": {}", snap.quantile(q))
                            })
                            .collect();
                        histograms.push(format!(
                            "\"{key}\": {{{}, \"count\": {}, \"sum\": {}, \"max\": {}}}",
                            quantiles.join(", "),
                            snap.count(),
                            snap.sum(),
                            snap.max()
                        ));
                    }
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }

    /// Snapshot the registry grouped by metric name (registration
    /// order preserved within and across groups).
    fn grouped(&self) -> Vec<(String, Vec<(Labels, RenderCell)>)> {
        let metrics = self
            .inner
            .metrics
            .lock()
            .expect("metrics registry poisoned");
        let mut groups: Vec<(String, Vec<(Labels, RenderCell)>)> = Vec::new();
        for entry in metrics.iter() {
            let rendered = match &entry.cell {
                MetricCell::Counter(c) => RenderCell::Counter(c.get()),
                MetricCell::Gauge(g) => RenderCell::Gauge(g.get()),
                MetricCell::Histogram(h) => RenderCell::Histogram(h.snapshot()),
            };
            if let Some(group) = groups.iter_mut().find(|(name, _)| *name == entry.name) {
                group.1.push((entry.labels.clone(), rendered));
            } else {
                groups.push((entry.name.clone(), vec![(entry.labels.clone(), rendered)]));
            }
        }
        groups
    }
}

enum RenderCell {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSnapshot),
}

/// `{k="v",quantile="0.99"}` or the empty string for no labels.
fn text_labels(labels: &Labels, quantile: Option<f64>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// `name` or `name{k=v,...}` — no inner quotes so it embeds directly
/// in a JSON string key.
fn json_key(name: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{name}{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_by_name_and_labels() {
        let rec = Recorder::new(TraceLevel::Off);
        let a = rec.counter("uhd_test_total");
        let b = rec.counter("uhd_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name ⇒ same cell");

        let s0 = rec.counter_with("uhd_sharded_total", &[("shard", "0")]);
        let s1 = rec.counter_with("uhd_sharded_total", &[("shard", "1")]);
        s0.add(5);
        assert_eq!(s1.get(), 0, "different labels ⇒ different cells");

        let g = rec.gauge("uhd_depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max never lowers");
        g.set_max(11);
        assert_eq!(g.get(), 11);

        let h1 = rec.histogram("uhd_lat_ns");
        let h2 = rec.histogram("uhd_lat_ns");
        h1.record(42);
        assert_eq!(h2.snapshot().count(), 1);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let rec = Recorder::new(TraceLevel::Off);
        rec.counter("uhd_requests_total").add(10);
        rec.gauge_with("uhd_queue_depth", &[("shard", "0")]).set(4);
        let h = rec.histogram_with("uhd_wait_ns", &[("shard", "0")]);
        for v in 1..=100 {
            h.record(v);
        }
        let text = rec.render_text();
        assert!(text.contains("# TYPE uhd_requests_total counter\n"));
        assert!(text.contains("uhd_requests_total 10\n"));
        assert!(text.contains("# TYPE uhd_queue_depth gauge\n"));
        assert!(text.contains("uhd_queue_depth{shard=\"0\"} 4\n"));
        assert!(text.contains("# TYPE uhd_wait_ns summary\n"));
        assert!(text.contains("uhd_wait_ns{shard=\"0\",quantile=\"0.5\"} 50\n"));
        assert!(text.contains("uhd_wait_ns_sum{shard=\"0\"} 5050\n"));
        assert!(text.contains("uhd_wait_ns_count{shard=\"0\"} 100\n"));
        // Every non-comment line is `series value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut split = line.rsplitn(2, ' ');
            let value = split.next().expect("value field");
            assert!(
                value.parse::<u64>().is_ok(),
                "unparseable value in {line:?}"
            );
            assert!(split.next().is_some(), "missing series name in {line:?}");
        }
    }

    #[test]
    fn render_json_round_trips_through_a_parser() {
        // Hand-rolled sanity: balanced braces, key quoting, and the
        // three top-level maps. (The bench crate's parser round-trip
        // is covered by tests/observability.rs to avoid a dev-dep
        // cycle: uhd-bench already depends on uhd-obs.)
        let rec = Recorder::new(TraceLevel::Off);
        rec.counter("uhd_requests_total").add(3);
        rec.gauge("uhd_depth").set(2);
        rec.histogram_with("uhd_wait_ns", &[("shard", "1")])
            .record(64);
        let json = rec.render_json();
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(json.contains("\"uhd_requests_total\": 3"));
        assert!(json.contains("\"uhd_wait_ns{shard=1}\""));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99_9\":"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }

    #[test]
    fn noop_recorder_renders_nothing_but_handles_work() {
        let rec = Recorder::noop();
        assert!(!rec.enabled());
        let c = rec.counter("uhd_ghost_total");
        c.add(9);
        assert_eq!(c.get(), 9, "handles still count");
        rec.event(TraceKind::ModelSwapped, 1, 2);
        assert!(rec.events().is_empty(), "noop records no events");
        assert_eq!(rec.render_text(), "");
        assert_eq!(rec.render_json(), "{}");
    }

    #[test]
    fn events_flow_through_the_recorder() {
        let rec = Recorder::new(TraceLevel::Info);
        rec.event(TraceKind::SampleRejected, 7, u64::MAX);
        rec.event(TraceKind::BatchFormed, 0, 8); // below Info
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, TraceKind::SampleRejected);
        assert_eq!(events[0].a, 7, "rejection carries the offending label");
    }
}
