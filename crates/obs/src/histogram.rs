//! A lock-free log-linear (HDR-style) histogram with atomic buckets.
//!
//! Values (typically latencies in nanoseconds) are binned into buckets
//! whose width grows with magnitude: within each power-of-two group the
//! value range is split into `2^SUB_BUCKET_BITS` linear sub-buckets, so
//! any recorded value lands in a bucket whose width is at most
//! `value / 2^SUB_BUCKET_BITS`. Quantiles read back from bucket
//! midpoints therefore carry a **bounded relative error** of
//! `2^-SUB_BUCKET_BITS` (≈ 3.1 % at the configured 5 bits) — exact for
//! small values, never worse than one sub-bucket for large ones.
//!
//! Recording is a single relaxed `fetch_add` on the bucket plus one on
//! the running sum: wait-free, allocation-free, safe from any number of
//! threads. Reads ([`Histogram::snapshot`]) are lock-free too — they
//! observe each bucket atomically, which is all a monotone counter set
//! needs. Snapshots are plain data: mergeable ([`HistogramSnapshot::merge`],
//! proven equivalent to recording the union) and queryable for
//! nearest-rank quantiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two group, as a bit count. The
/// quantile relative-error bound is `2^-SUB_BUCKET_BITS`.
pub const SUB_BUCKET_BITS: u32 = 5;

/// The guaranteed relative-error bound of any quantile read back from
/// the histogram, versus the exact sorted-sample quantile.
pub const RELATIVE_ERROR: f64 = 1.0 / (1 << SUB_BUCKET_BITS) as f64;

/// Buckets in group 0, where values are represented exactly
/// (width-1 buckets covering `0..2^(SUB_BUCKET_BITS + 1)`).
const GROUP0: usize = 1 << (SUB_BUCKET_BITS + 1);

/// Sub-buckets per log group past group 0.
const SUBS: usize = 1 << SUB_BUCKET_BITS;

/// Log groups past group 0: bit lengths `SUB_BUCKET_BITS + 2 ..= 64`.
const GROUPS: usize = 64 - (SUB_BUCKET_BITS as usize + 1);

/// Total bucket count; covers the full `u64` domain with no clamping.
pub const BUCKETS: usize = GROUP0 + GROUPS * SUBS;

/// Bucket index of a value. Group 0 is exact; group `g ≥ 1` holds
/// values of bit length `SUB_BUCKET_BITS + 1 + g`, split into `SUBS`
/// linear sub-buckets of width `2^g`.
fn bucket_index(v: u64) -> usize {
    if v < GROUP0 as u64 {
        return v as usize;
    }
    let bits = 64 - v.leading_zeros(); // ≥ SUB_BUCKET_BITS + 2 here
    let group = (bits - (SUB_BUCKET_BITS + 1)) as usize;
    let sub = (v >> group) as usize - SUBS;
    GROUP0 + (group - 1) * SUBS + sub
}

/// Inclusive lower bound and width of a bucket (`[lo, lo + width)`).
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < GROUP0 {
        return (index as u64, 1);
    }
    let rel = index - GROUP0;
    let group = (rel / SUBS + 1) as u32;
    let sub = (rel % SUBS) as u64;
    ((SUBS as u64 + sub) << group, 1u64 << group)
}

/// The value a bucket reports for everything recorded into it: the
/// bucket midpoint (exact for the width-1 buckets of group 0). Any
/// true value in the bucket differs from this by less than the bucket
/// width, i.e. by at most `RELATIVE_ERROR` of itself.
fn bucket_value(index: usize) -> u64 {
    let (lo, width) = bucket_bounds(index);
    lo + (width - 1) / 2
}

/// A lock-free log-linear histogram over `u64` values.
///
/// # Example
///
/// ```
/// use uhd_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 100);
/// assert_eq!(snap.quantile(0.5), 50); // small values are exact
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` value domain.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value — two relaxed atomic adds, wait-free.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // fetch_add wraps on overflow by definition (no panic even with
        // overflow-checks); at nanosecond magnitudes the sum stays in
        // range for centuries of recorded time.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in **nanoseconds** (saturating).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts, safe to take while
    /// writers keep recording (each bucket is read atomically; a
    /// concurrent record may or may not be included).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: queryable and mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element of [`HistogramSnapshot::merge`]).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            sum: 0,
        }
    }

    /// Total recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of every recorded value (wrapping).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The value at quantile `q ∈ [0, 1]` by the nearest-rank method,
    /// reported as the owning bucket's midpoint — within
    /// [`RELATIVE_ERROR`] of the exact sorted-sample quantile. Returns
    /// 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_value(index);
            }
        }
        // Unreachable: seen reaches total ≥ rank on the last nonzero
        // bucket. Kept total for defense.
        bucket_value(BUCKETS - 1)
    }

    /// Largest recorded value, rounded to its bucket midpoint; 0 when
    /// empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_value)
    }

    /// Mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }

    /// Fold another snapshot into this one. Merging two snapshots is
    /// exactly equivalent to having recorded both value streams into
    /// one histogram (record-union), which is what makes per-shard
    /// histograms aggregatable.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uhd_testutil::fixture_rng;

    #[test]
    fn bucket_index_covers_the_full_domain_in_order() {
        // Index is monotone in the value and bounds always contain it.
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                probes.push((1u64 << shift).saturating_add(off << shift.saturating_sub(3)));
            }
        }
        probes.push(0);
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "index must be monotone in the value ({v})");
            last = idx;
            let (lo, width) = bucket_bounds(idx);
            assert!(
                lo <= v && v - lo < width,
                "{v} outside bucket [{lo}, {lo}+{width})"
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..GROUP0 as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..GROUP0 as u64 {
            let q = (v + 1) as f64 / GROUP0 as f64;
            assert_eq!(snap.quantile(q), v, "group-0 quantiles are exact");
        }
    }

    #[test]
    fn quantiles_of_empty_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.max(), 0);
        assert!(snap.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_totals_reconcile() {
        let h = Histogram::new();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                scope.spawn(move || {
                    let mut rng = fixture_rng(&format!("hist-{t}"));
                    for _ in 0..PER_THREAD {
                        h.record(rng.next_u64() >> (t * 7 % 40));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), THREADS * PER_THREAD);
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(10));
        let snap = h.snapshot();
        let q = snap.quantile(1.0);
        assert!(
            (q as f64 - 10_000.0).abs() <= 10_000.0 * RELATIVE_ERROR,
            "10 µs must read back as ~10_000 ns, got {q}"
        );
    }

    /// Exact nearest-rank quantile over raw samples, the reference the
    /// histogram is held to.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Histogram quantiles stay within the log-linear bucket bound
        /// of the exact sorted reference, across magnitudes.
        #[test]
        fn prop_quantile_error_is_bounded(
            n in 1usize..400,
            shift in 0u32..50,
            seed in any::<u64>(),
        ) {
            let mut rng = fixture_rng(&format!("qbound-{seed}"));
            let values: Vec<u64> = (0..n).map(|_| rng.next_u64() >> shift).collect();
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let snap = h.snapshot();
            let mut sorted = values;
            sorted.sort_unstable();
            for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let exact = exact_quantile(&sorted, q);
                let est = snap.quantile(q);
                let bound = (exact as f64 * RELATIVE_ERROR).max(0.0);
                prop_assert!(
                    (est as f64 - exact as f64).abs() <= bound,
                    "q={q}: est {est} vs exact {exact} (bound {bound})"
                );
            }
            prop_assert_eq!(snap.count(), sorted.len() as u64);
        }

        /// merge = record-union: merging per-stream snapshots equals
        /// one histogram fed both streams.
        #[test]
        fn prop_merge_equals_record_union(
            n_a in 0usize..200,
            n_b in 0usize..200,
            seed in any::<u64>(),
        ) {
            let mut rng = fixture_rng(&format!("merge-{seed}"));
            let stream_a: Vec<u64> = (0..n_a).map(|_| rng.next_u64() >> (rng.next_u64() % 48)).collect();
            let stream_b: Vec<u64> = (0..n_b).map(|_| rng.next_u64() >> (rng.next_u64() % 48)).collect();
            let (ha, hb, hu) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &v in &stream_a {
                ha.record(v);
                hu.record(v);
            }
            for &v in &stream_b {
                hb.record(v);
                hu.record(v);
            }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            prop_assert_eq!(&merged, &hu.snapshot());
            let mut id = HistogramSnapshot::empty();
            id.merge(&merged);
            prop_assert_eq!(&id, &merged, "empty() is the merge identity");
        }
    }
}
