//! Structured trace events in a bounded, non-blocking ring buffer.
//!
//! The event log is the "what just happened" complement to the metric
//! registry's "how much / how fast": a fixed-capacity ring of recent
//! structured events (batch formed, model swapped, snapshot published,
//! sample rejected, kernel dispatched), each carrying two `u64`
//! payload words whose meaning depends on the kind. Writers never
//! block and never allocate; when the ring wraps, the oldest events
//! are overwritten.
//!
//! The ring is lock-free without `unsafe`: every slot field is an
//! atomic, and a per-slot version word (seqlock-style: odd while a
//! write is in flight, `2·seq + 2` once event `seq` is complete) lets
//! readers detect and skip slots they raced with. All slot accesses
//! use `SeqCst`, so the version double-check is sound under the single
//! total order — a racing reader can only ever *drop* an event, never
//! observe a torn one. Events are low-rate (per batch at the finest),
//! so the stronger ordering costs nothing measurable.
//!
//! Verbosity follows the repo's env-knob convention via `UHD_LOG`:
//! unset/empty/`"0"` disables tracing, `"2"`/`"trace"` enables
//! everything including per-batch events, any other non-empty value
//! enables the infrequent lifecycle events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default number of slots in a [`EventLog`] ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 512;

/// How much the trace ring records, parsed from `UHD_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (the default).
    Off,
    /// Record infrequent lifecycle events (swaps, snapshots,
    /// rejections, kernel dispatch).
    Info,
    /// Additionally record per-batch events.
    Trace,
}

impl TraceLevel {
    /// Parse the `UHD_LOG` environment knob: unset, empty, or `"0"`
    /// mean [`TraceLevel::Off`]; `"2"` or `"trace"` (any case) mean
    /// [`TraceLevel::Trace`]; any other non-empty value means
    /// [`TraceLevel::Info`]. This mirrors the repo-wide boolean-knob
    /// rule (`uhd_bench::env_flag`) with one extra verbosity step.
    #[must_use]
    pub fn from_env() -> Self {
        TraceLevel::parse(std::env::var("UHD_LOG").ok().as_deref())
    }

    /// The `UHD_LOG` parsing rule, separated from the environment read
    /// so it is testable without process-global mutation.
    #[must_use]
    pub fn parse(value: Option<&str>) -> Self {
        match value {
            None => TraceLevel::Off,
            Some(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "0" => TraceLevel::Off,
                "2" | "trace" => TraceLevel::Trace,
                _ => TraceLevel::Info,
            },
        }
    }
}

/// What happened. Payload words `a`/`b` are per-kind:
///
/// | kind                | `a`                      | `b`                         |
/// |---------------------|--------------------------|-----------------------------|
/// | `KernelDispatched`  | kernel kind ordinal      | shard count                 |
/// | `BatchFormed`       | shard index              | batch size                  |
/// | `ModelSwapped`      | new generation           | class count                 |
/// | `SnapshotPublished` | new generation           | samples consumed since last |
/// | `SampleRejected`    | offending label          | predicted label (`u64::MAX` = none) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The engine resolved its popcount kernel at startup.
    KernelDispatched,
    /// A worker shard dequeued a batch (Trace level only).
    BatchFormed,
    /// A new model generation was hot-swapped in.
    ModelSwapped,
    /// The background trainer published a learner snapshot.
    SnapshotPublished,
    /// The learner rejected a sample; `a` carries the offending label
    /// so rejections are attributable, not anonymous.
    SampleRejected,
}

impl TraceKind {
    /// Stable wire code for the ring's atomic kind word (nonzero, so a
    /// zero-initialized slot can never decode as a real event).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            TraceKind::KernelDispatched => 1,
            TraceKind::BatchFormed => 2,
            TraceKind::ModelSwapped => 3,
            TraceKind::SnapshotPublished => 4,
            TraceKind::SampleRejected => 5,
        }
    }

    /// Inverse of [`TraceKind::code`].
    #[must_use]
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(TraceKind::KernelDispatched),
            2 => Some(TraceKind::BatchFormed),
            3 => Some(TraceKind::ModelSwapped),
            4 => Some(TraceKind::SnapshotPublished),
            5 => Some(TraceKind::SampleRejected),
            _ => None,
        }
    }

    /// The minimum [`TraceLevel`] at which this kind is recorded.
    #[must_use]
    pub fn level(self) -> TraceLevel {
        match self {
            TraceKind::BatchFormed => TraceLevel::Trace,
            _ => TraceLevel::Info,
        }
    }

    /// Human-readable name used by displays and JSON export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::KernelDispatched => "kernel_dispatched",
            TraceKind::BatchFormed => "batch_formed",
            TraceKind::ModelSwapped => "model_swapped",
            TraceKind::SnapshotPublished => "snapshot_published",
            TraceKind::SampleRejected => "sample_rejected",
        }
    }
}

/// One decoded trace event read back from the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotone across the whole log's life;
    /// gaps mean events were overwritten or raced).
    pub seq: u64,
    /// Microseconds since the log's epoch (recorder creation).
    pub at_micros: u64,
    /// What happened.
    pub kind: TraceKind,
    /// First payload word (see [`TraceKind`] for per-kind meaning).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// One ring slot: all fields atomic so the whole structure is safe
/// without `unsafe`, with `ver` as the seqlock word.
#[derive(Debug)]
struct Slot {
    ver: AtomicU64,
    at: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            ver: AtomicU64::new(0),
            at: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded lock-free ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct EventLog {
    level: TraceLevel,
    epoch: Instant,
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl EventLog {
    /// A ring of `capacity` slots recording events at or below
    /// `level`. A zero capacity is promoted to 1.
    #[must_use]
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        EventLog {
            level,
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// The configured verbosity.
    #[must_use]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Total events accepted so far (including ones since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Record an event if `kind` is enabled at the configured level.
    /// Never blocks; wraps over the oldest event when full.
    pub fn push(&self, kind: TraceKind, a: u64, b: u64) {
        if kind.level() > self.level {
            return;
        }
        let at = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let seq = self.head.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Seqlock write: mark in-flight (odd), store payload, mark
        // complete (even, unique per seq). All SeqCst — see module docs.
        slot.ver.store(2 * seq + 1, Ordering::SeqCst);
        slot.at.store(at, Ordering::SeqCst);
        slot.kind.store(kind.code(), Ordering::SeqCst);
        slot.a.store(a, Ordering::SeqCst);
        slot.b.store(b, Ordering::SeqCst);
        slot.ver.store(2 * seq + 2, Ordering::SeqCst);
    }

    /// Decode the events currently resident in the ring, oldest first.
    /// Slots mid-write (or overwritten while reading) are skipped, so
    /// a reader racing writers gets a consistent — possibly partial —
    /// view, never a torn event.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::SeqCst);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            let complete = 2 * seq + 2;
            if slot.ver.load(Ordering::SeqCst) != complete {
                continue;
            }
            let at = slot.at.load(Ordering::SeqCst);
            let kind = slot.kind.load(Ordering::SeqCst);
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            if slot.ver.load(Ordering::SeqCst) != complete {
                continue;
            }
            if let Some(kind) = TraceKind::from_code(kind) {
                out.push(TraceEvent {
                    seq,
                    at_micros: at,
                    kind,
                    a,
                    b,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gates_recording() {
        let log = EventLog::new(TraceLevel::Info, 8);
        log.push(TraceKind::ModelSwapped, 1, 10);
        log.push(TraceKind::BatchFormed, 0, 16); // Trace-only: dropped
        let events = log.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, TraceKind::ModelSwapped);
        assert_eq!((events[0].a, events[0].b), (1, 10));

        let off = EventLog::new(TraceLevel::Off, 8);
        off.push(TraceKind::ModelSwapped, 1, 10);
        assert!(off.events().is_empty());
        assert_eq!(off.recorded(), 0);
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let log = EventLog::new(TraceLevel::Trace, 4);
        for i in 0..10u64 {
            log.push(TraceKind::BatchFormed, i, i * 2);
        }
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "only the newest capacity-many survive, oldest first"
        );
        assert_eq!(log.recorded(), 10);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].at_micros <= w[1].at_micros);
        }
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let log = EventLog::new(TraceLevel::Trace, 64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        // Payload invariant b == a + 1 lets the reader
                        // detect torn events.
                        let a = t * 1_000_000 + i;
                        log.push(TraceKind::BatchFormed, a, a + 1);
                    }
                });
            }
            for _ in 0..50 {
                for e in log.events() {
                    assert_eq!(e.b, e.a + 1, "torn event observed");
                }
            }
        });
        assert_eq!(log.recorded(), 8_000);
        let settled = log.events();
        assert_eq!(settled.len(), 64, "ring is full after the storm");
        for e in settled {
            assert_eq!(e.b, e.a + 1);
        }
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            TraceKind::KernelDispatched,
            TraceKind::BatchFormed,
            TraceKind::ModelSwapped,
            TraceKind::SnapshotPublished,
            TraceKind::SampleRejected,
        ] {
            assert_eq!(TraceKind::from_code(kind.code()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(
            TraceKind::from_code(0),
            None,
            "empty slots decode to nothing"
        );
        assert_eq!(TraceKind::from_code(99), None);
    }

    #[test]
    fn trace_level_parsing_follows_the_env_knob_rule() {
        assert_eq!(TraceLevel::parse(None), TraceLevel::Off);
        assert_eq!(TraceLevel::parse(Some("")), TraceLevel::Off);
        assert_eq!(TraceLevel::parse(Some("0")), TraceLevel::Off);
        assert_eq!(TraceLevel::parse(Some("1")), TraceLevel::Info);
        assert_eq!(TraceLevel::parse(Some("info")), TraceLevel::Info);
        assert_eq!(TraceLevel::parse(Some("yes")), TraceLevel::Info);
        assert_eq!(TraceLevel::parse(Some("2")), TraceLevel::Trace);
        assert_eq!(TraceLevel::parse(Some("trace")), TraceLevel::Trace);
        assert_eq!(TraceLevel::parse(Some("TRACE")), TraceLevel::Trace);
        assert!(TraceLevel::Off < TraceLevel::Info && TraceLevel::Info < TraceLevel::Trace);
    }
}
