//! # uhd-obs — observability for the uHD serving stack
//!
//! A dependency-free telemetry layer sized for the paper's
//! "lightweight" claim: if instrumentation isn't near-free, the
//! latency numbers it reports are fiction. Three pieces:
//!
//! * [`Histogram`] — a lock-free log-linear (HDR-style) histogram.
//!   Recording is two relaxed atomic adds; quantiles read back from
//!   mergeable snapshots carry a bounded relative error of
//!   [`RELATIVE_ERROR`] (≈ 3.1 %).
//! * [`Recorder`] — a facade of named counters/gauges/histograms plus
//!   a bounded lock-free ring of structured [`TraceEvent`]s (verbosity
//!   via the `UHD_LOG` knob), rendered as Prometheus-style text
//!   ([`Recorder::render_text`]) or JSON ([`Recorder::render_json`]).
//! * [`TraceKind`]/[`TraceLevel`] — the event vocabulary the serving
//!   stack emits: batch formed, model swapped, snapshot published,
//!   sample rejected, kernel dispatched.
//!
//! The same [`Histogram`] backs the engine's live p50/p99, the
//! `BENCH_*.json` trajectory numbers, and the bench bins' latency
//! sections, so there is exactly one quantile implementation to trust.
//!
//! ```
//! use uhd_obs::{Recorder, TraceLevel};
//! use std::time::Duration;
//!
//! let rec = Recorder::new(TraceLevel::Off);
//! let wait = rec.histogram_with("uhd_request_queue_wait_ns", &[("shard", "0")]);
//! wait.record_duration(Duration::from_micros(120));
//! let text = rec.render_text();
//! assert!(text.contains("# TYPE uhd_request_queue_wait_ns summary"));
//! assert!(text.contains("quantile=\"0.99\""));
//! ```

pub mod events;
pub mod histogram;
pub mod recorder;

pub use events::{EventLog, TraceEvent, TraceKind, TraceLevel, DEFAULT_EVENT_CAPACITY};
pub use histogram::{Histogram, HistogramSnapshot, RELATIVE_ERROR, SUB_BUCKET_BITS};
pub use recorder::{Counter, Gauge, Recorder, EXPOSED_QUANTILES};
